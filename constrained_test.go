package gesmc

import (
	"context"
	"errors"
	"testing"
)

// fragileRing returns a connected, bridge-heavy undirected target: a
// cycle with two chords.
func fragileRing(t *testing.T, n int) *Graph {
	t.Helper()
	var edges [][2]uint32
	for v := 0; v < n; v++ {
		edges = append(edges, [2]uint32{uint32(v), uint32((v + 1) % n)})
	}
	edges = append(edges, [2]uint32{0, uint32(n / 2)}, [2]uint32{3, uint32(n - 3)})
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConnectivityMetrics(t *testing.T) {
	g := fragileRing(t, 10)
	if !g.IsConnected() {
		t.Fatal("ring not connected")
	}
	if size, comps := g.LargestComponent(); size != 10 || comps != 1 {
		t.Fatalf("LargestComponent = (%d, %d)", size, comps)
	}
	// Two triangles, disjoint.
	split, err := NewGraph(7, [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if split.IsConnected() {
		t.Fatal("disjoint triangles reported connected")
	}
	if size, comps := split.LargestComponent(); size != 3 || comps != 3 {
		// node 6 is isolated: components = {0,1,2}, {3,4,5}, {6}.
		t.Fatalf("LargestComponent = (%d, %d), want (3, 3)", size, comps)
	}

	dg, err := NewDiGraph(5, [][2]uint32{{0, 1}, {2, 1}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if dg.IsConnected() {
		t.Fatal("two weak components reported connected")
	}
	if dg.ConnectedComponents() != 2 {
		t.Fatalf("weak components = %d", dg.ConnectedComponents())
	}
	if size, comps := dg.LargestComponent(); size != 3 || comps != 2 {
		t.Fatalf("DiGraph LargestComponent = (%d, %d), want (3, 2)", size, comps)
	}
}

func TestConstraintValidationErrors(t *testing.T) {
	g := fragileRing(t, 8)
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"loop forbidden edge", []Option{WithConstraint(ForbiddenEdges([][2]uint32{{2, 2}}))}, ErrInvalidConstraint},
		{"out-of-range forbidden edge", []Option{WithConstraint(ForbiddenEdges([][2]uint32{{0, 99}}))}, ErrInvalidConstraint},
		{"class length mismatch", []Option{WithConstraint(NodeClasses([]int{0, 1}))}, ErrInvalidConstraint},
		{"zero constraint", []Option{WithConstraint(Constraint{})}, ErrInvalidConstraint},
		{"forbidden edge present", []Option{WithConstraint(ForbiddenEdges([][2]uint32{{0, 1}}))}, ErrConstraintViolated},
		{"protected edge missing", []Option{WithConstraint(ProtectedEdges([][2]uint32{{1, 5}}))}, ErrConstraintViolated},
		{"curveball unsupported", []Option{WithAlgorithm(GlobalCurveball), WithConstraint(Connected())}, ErrUnsupportedConstraint},
		{"naive unsupported", []Option{WithAlgorithm(NaiveParES), WithConstraint(Connected())}, ErrUnsupportedConstraint},
		{"adjlist unsupported", []Option{WithAlgorithm(AdjListES), WithConstraint(Connected())}, ErrUnsupportedConstraint},
		{"buckets unsupported", []Option{WithSampleViaBuckets(true), WithConstraint(Connected())}, ErrUnsupportedConstraint},
	}
	for _, tc := range cases {
		if _, err := NewSampler(g.Clone(), tc.opts...); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Disconnected target under Connected().
	split, err := NewGraph(6, [][2]uint32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(split, WithConstraint(Connected())); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("disconnected target: err = %v, want ErrConstraintViolated", err)
	}
}

// TestEnsembleConnectedAllWorkers is the acceptance criterion: with
// Connected() active, every sample from Sampler.Ensemble — sequential
// and parallel chains, workers {1, 2, 4, 8} — is connected, and the
// chain is seed-deterministic per worker count.
func TestEnsembleConnectedAllWorkers(t *testing.T) {
	base := fragileRing(t, 14)
	for _, alg := range []Algorithm{SeqES, SeqGlobalES, ParES, ParGlobalES} {
		for _, w := range []int{1, 2, 4, 8} {
			draw := func() ([]string, Stats) {
				s, err := NewSampler(base.Clone(),
					WithAlgorithm(alg), WithWorkers(w), WithSeed(21),
					WithBurnIn(6), WithThinning(2),
					WithConstraint(Connected()))
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				var keys []string
				for smp := range s.Ensemble(context.Background(), 8) {
					if smp.Err != nil {
						t.Fatal(smp.Err)
					}
					if !smp.Graph.IsConnected() {
						t.Fatalf("%v w=%d sample %d: disconnected", alg, w, smp.Index)
					}
					if err := smp.Graph.CheckSimple(); err != nil {
						t.Fatalf("%v w=%d: %v", alg, w, err)
					}
					keys = append(keys, canonKey(smp.Graph))
				}
				return keys, s.Stats()
			}
			k1, st1 := draw()
			k2, st2 := draw()
			for i := range k1 {
				if k1[i] != k2[i] {
					t.Fatalf("%v w=%d: ensemble not deterministic per seed", alg, w)
				}
			}
			if st1.ConstraintVetoes != st2.ConstraintVetoes {
				t.Fatalf("%v w=%d: veto counts differ across identical runs", alg, w)
			}
		}
	}
}

// canonKey gives a canonical string for an undirected public graph.
func canonKey(g *Graph) string {
	return string(canonBytes(g))
}

func canonBytes(g *Graph) []byte {
	edges := g.Edges()
	// Insertion-sort the pairs (tiny graphs only).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j-1], edges[j]
			if a[0] < b[0] || (a[0] == b[0] && a[1] <= b[1]) {
				break
			}
			edges[j-1], edges[j] = b, a
		}
	}
	out := make([]byte, 0, len(edges)*2)
	for _, e := range edges {
		out = append(out, byte(e[0]), byte(e[1]))
	}
	return out
}

// TestEnsembleForbiddenWorkerIdentical: local constraints keep the
// parallel ensemble bit-identical across worker counts through the
// public API.
func TestEnsembleForbiddenWorkerIdentical(t *testing.T) {
	base := fragileRing(t, 12)
	forbidden := [][2]uint32{{0, 2}, {1, 7}, {4, 9}}
	var ref []string
	for _, w := range []int{1, 2, 4, 8} {
		s, err := NewSampler(base.Clone(),
			WithAlgorithm(ParGlobalES), WithWorkers(w), WithSeed(8),
			WithBurnIn(4), WithThinning(2),
			WithConstraint(ForbiddenEdges(forbidden)))
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for smp := range s.Ensemble(context.Background(), 6) {
			if smp.Err != nil {
				t.Fatal(smp.Err)
			}
			for _, f := range forbidden {
				if smp.Graph.HasEdge(f[0], f[1]) {
					t.Fatalf("w=%d: forbidden edge (%d,%d) sampled", w, f[0], f[1])
				}
			}
			keys = append(keys, canonKey(smp.Graph))
		}
		s.Close()
		if w == 1 {
			ref = keys
			continue
		}
		for i := range ref {
			if keys[i] != ref[i] {
				t.Fatalf("w=%d: ensemble sample %d differs from w=1", w, i)
			}
		}
	}
}

// TestProtectedEdgesHeld: protected edges survive the whole ensemble.
func TestProtectedEdgesHeld(t *testing.T) {
	base := fragileRing(t, 12)
	protected := [][2]uint32{{0, 1}, {5, 6}}
	s, err := NewSampler(base.Clone(),
		WithAlgorithm(SeqGlobalES), WithSeed(13),
		WithBurnIn(5), WithThinning(2),
		WithConstraint(ProtectedEdges(protected)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for smp := range s.Ensemble(context.Background(), 10) {
		if smp.Err != nil {
			t.Fatal(smp.Err)
		}
		for _, p := range protected {
			if !smp.Graph.HasEdge(p[0], p[1]) {
				t.Fatalf("sample %d lost protected edge (%d,%d)", smp.Index, p[0], p[1])
			}
		}
	}
	if s.Stats().ConstraintVetoes == 0 {
		t.Fatal("protected-edge constraint never vetoed anything; untested")
	}
}

// TestNodeClassesPreserveClassMatrix: the degree-class partition
// constraint keeps the number of edges between each class pair fixed.
func TestNodeClassesPreserveClassMatrix(t *testing.T) {
	base := fragileRing(t, 12)
	classes := make([]int, 12)
	for v := range classes {
		classes[v] = v % 3
	}
	classMatrix := func(g *Graph) map[[2]int]int {
		m := map[[2]int]int{}
		for _, e := range g.Edges() {
			a, b := classes[e[0]], classes[e[1]]
			if a > b {
				a, b = b, a
			}
			m[[2]int{a, b}]++
		}
		return m
	}
	want := classMatrix(base)
	s, err := NewSampler(base.Clone(),
		WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(6),
		WithBurnIn(5), WithThinning(2),
		WithConstraint(NodeClasses(classes)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for smp := range s.Ensemble(context.Background(), 8) {
		if smp.Err != nil {
			t.Fatal(smp.Err)
		}
		got := classMatrix(smp.Graph)
		if len(got) != len(want) {
			t.Fatalf("sample %d: class matrix shape changed", smp.Index)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("sample %d: class pair %v count %d != %d", smp.Index, k, got[k], v)
			}
		}
	}
}

// TestDirectedConnectedEnsemble: the directed target class samples
// weakly connected ensembles through the same option.
func TestDirectedConnectedEnsemble(t *testing.T) {
	var arcs [][2]uint32
	for v := 0; v < 12; v++ {
		arcs = append(arcs, [2]uint32{uint32(v), uint32((v + 1) % 12)})
	}
	arcs = append(arcs, [2]uint32{0, 6})
	dg, err := NewDiGraph(12, arcs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		s, err := NewSampler(dg.Clone(),
			WithAlgorithm(ParGlobalES), WithWorkers(w), WithSeed(17),
			WithBurnIn(5), WithThinning(2),
			WithConstraint(Connected()))
		if err != nil {
			t.Fatal(err)
		}
		for smp := range s.Ensemble(context.Background(), 6) {
			if smp.Err != nil {
				t.Fatal(smp.Err)
			}
			if !smp.DiGraph.IsConnected() {
				t.Fatalf("w=%d sample %d: weakly disconnected", w, smp.Index)
			}
			if err := smp.DiGraph.CheckSimple(); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
	}
}

// TestConstraintStatsFlow: constraint counters surface through the
// public Stats on a workload guaranteed to reject.
func TestConstraintStatsFlow(t *testing.T) {
	// Path graph: all bridges, heavy connectivity rejection.
	var edges [][2]uint32
	for v := 0; v < 11; v++ {
		edges = append(edges, [2]uint32{uint32(v), uint32(v + 1)})
	}
	g, err := NewGraph(12, edges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(g,
		WithAlgorithm(SeqES), WithSeed(2),
		WithConstraint(Connected()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Step(20)
	if err != nil {
		t.Fatal(err)
	}
	if st.ConstraintVetoes == 0 {
		t.Fatal("no constraint vetoes on an all-bridge path graph")
	}
	if st.Accepted+st.ConstraintVetoes > st.Attempted {
		t.Fatalf("accounting: accepted %d + vetoed %d > attempted %d",
			st.Accepted, st.ConstraintVetoes, st.Attempted)
	}
	if total := s.Stats(); total.ConstraintVetoes != st.ConstraintVetoes {
		t.Fatal("lifetime stats do not accumulate constraint vetoes")
	}
}
