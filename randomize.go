package gesmc

import (
	"math"
	"time"

	"gesmc/internal/autocorr"
	"gesmc/internal/core"
)

// Algorithm selects a switching implementation (paper names), plus the
// related Curveball trade chains.
type Algorithm int

const (
	// SeqES is the fast sequential ES-MC (hash set + edge array, §5).
	SeqES Algorithm = iota
	// SeqGlobalES is the sequential G-ES-MC (Definition 3).
	SeqGlobalES
	// NaiveParES is the inexact parallel baseline (§5.1). It does not
	// faithfully implement ES-MC; use it only for performance studies.
	NaiveParES
	// ParES is the exact parallel ES-MC (Algorithm 2).
	ParES
	// ParGlobalES is the exact parallel G-ES-MC (Algorithm 3) — the
	// paper's headline algorithm and the recommended default.
	ParGlobalES
	// AdjListES is the unsorted adjacency-list sequential baseline
	// (NetworKit-style data structure).
	AdjListES
	// AdjSortES is the sorted adjacency-list sequential baseline
	// (Gengraph-style data structure).
	AdjSortES
	// Curveball is the Curveball trade chain (Carstens, Berger & Strona
	// 2016): one superstep performs ⌊n/2⌋ uniformly random trades, each
	// shuffling the disjoint neighborhoods of two nodes. Trades execute
	// as node-disjoint batches through the unified superstep kernel
	// (DESIGN.md §4), so WithWorkers applies and results are invariant
	// under the worker count. Undirected targets only.
	Curveball
	// GlobalCurveball is the Global Curveball chain (Carstens et al.,
	// ESA 2018), the trade analogue of G-ES-MC: one superstep is one
	// global trade pairing every node exactly once, executed as one
	// parallel superstep under the per-batch edge ownership discipline
	// of DESIGN.md §4 (every edge trades at most — and here exactly at
	// most — once per global trade). WithWorkers applies; results are
	// invariant under the worker count. Undirected targets only.
	GlobalCurveball
	// Exact is not a Markov chain: each draw is an exactly uniform,
	// independent sample of the simple graphs with the target's degree
	// sequence, produced by pairing-model generation with rejection
	// (restart on any loop or multi-edge; DESIGN.md §14). There is no
	// burn-in and no thinning — combining Exact with WithBurnIn,
	// WithThinning, or WithSwapsPerEdge returns ErrExactSchedule — and
	// Stats reports restart counts instead of switch acceptance.
	// Bounded-degree undirected targets only: sequences outside the
	// tractable rejection regime return ErrExactUnsupported, and the
	// caller decides the fallback (typically an MCMC chain).
	Exact
)

var algNames = map[Algorithm]core.Algorithm{
	SeqES:       core.AlgSeqES,
	SeqGlobalES: core.AlgSeqGlobalES,
	NaiveParES:  core.AlgNaiveParES,
	ParES:       core.AlgParES,
	ParGlobalES: core.AlgParGlobalES,
	AdjListES:   core.AlgAdjListES,
	AdjSortES:   core.AlgAdjSortES,
}

// curveballNames names the trade chains, which have no core counterpart.
var curveballNames = map[Algorithm]string{
	Curveball:       "Curveball",
	GlobalCurveball: "GlobalCurveball",
}

// exactName names the non-chain exact sampler.
const exactName = "Exact"

// valid reports whether a is a defined Algorithm value.
func (a Algorithm) valid() bool {
	if _, ok := algNames[a]; ok {
		return true
	}
	if _, ok := curveballNames[a]; ok {
		return true
	}
	return a == Exact
}

// String returns the paper's name for the implementation.
func (a Algorithm) String() string {
	if ca, ok := algNames[a]; ok {
		return ca.String()
	}
	if name, ok := curveballNames[a]; ok {
		return name
	}
	if a == Exact {
		return exactName
	}
	return "unknown"
}

// ParseAlgorithm maps a name (as printed by String) to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, &ParseError{Name: name}
}

// ParseError reports an unknown algorithm name. It wraps
// ErrUnknownAlgorithm for errors.Is classification.
type ParseError struct{ Name string }

func (e *ParseError) Error() string { return "gesmc: unknown algorithm " + e.Name }
func (e *ParseError) Unwrap() error { return ErrUnknownAlgorithm }

// Algorithms lists all implementations in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{
		SeqES, SeqGlobalES, NaiveParES, ParES, ParGlobalES,
		AdjListES, AdjSortES, Curveball, GlobalCurveball, Exact,
	}
}

// Options configures the legacy one-shot entry points Randomize,
// RandomizeDirected, and SampleFromDegrees.
//
// Deprecated: new code should use NewSampler with functional options
// (WithAlgorithm, WithWorkers, WithSeed, WithThinning, ...), which
// validates its inputs and amortizes engine setup across samples.
// Options remains supported as a thin conversion layer.
type Options struct {
	// Algorithm selects the implementation; default ParGlobalES.
	Algorithm Algorithm
	// Workers is the parallelism degree P; default 1. Negative values
	// are rejected with ErrInvalidWorkers.
	Workers int
	// SwapsPerEdge requests enough supersteps that the expected number
	// of switch attempts is SwapsPerEdge per edge. The paper (and the
	// empirical literature it cites) recommends 10-30; default 10,
	// i.e. 20 supersteps.
	SwapsPerEdge float64
	// Supersteps overrides SwapsPerEdge with an explicit superstep
	// count when > 0 (one superstep = ⌊m/2⌋ switch attempts for ES-MC
	// chains, one global switch for G-ES-MC chains).
	Supersteps int
	// Seed makes runs reproducible; runs with the same (graph, options)
	// are deterministic.
	Seed uint64
	// LoopProb is the P_L of G-ES-MC (Definition 3); default 1e-6.
	// Values outside [0, 1] are rejected with ErrInvalidLoopProb.
	LoopProb float64
	// Prefetch enables the hash-bucket pre-touch pipeline (§5.4).
	Prefetch bool
	// SampleViaBuckets makes SeqES sample edges by probing random hash
	// buckets instead of the auxiliary edge array (§5.3).
	SampleViaBuckets bool
}

func (o Options) supersteps() int {
	if o.Supersteps > 0 {
		return o.Supersteps
	}
	spe := o.SwapsPerEdge
	if spe <= 0 {
		spe = 10
	}
	return int(math.Ceil(2 * spe))
}

// samplerOptions converts the legacy struct to functional options.
// Zero values keep their legacy "use the default" meaning; out-of-range
// values surface the typed validation errors.
func (o Options) samplerOptions() []Option {
	opts := []Option{WithAlgorithm(o.Algorithm), WithSeed(o.Seed)}
	if o.Workers != 0 {
		opts = append(opts, WithWorkers(o.Workers))
	}
	if o.LoopProb != 0 {
		opts = append(opts, WithLoopProb(o.LoopProb))
	}
	if o.Prefetch {
		opts = append(opts, WithPrefetch(true))
	}
	if o.SampleViaBuckets {
		opts = append(opts, WithSampleViaBuckets(true))
	}
	return opts
}

// Stats reports what a randomization run did.
type Stats struct {
	Algorithm  string
	Supersteps int
	// Attempted and Accepted count switches; Accepted/Attempted is the
	// acceptance rate of the chain. (Curveball trades are never
	// rejected, so there the two are equal.)
	Attempted int64
	Accepted  int64
	// Rounds instrumentation of the parallel supersteps (zero for
	// sequential algorithms): average and maximum rounds per superstep,
	// and the fraction of round time spent beyond the first round
	// (Fig. 9's metric).
	AvgRounds          float64
	MaxRounds          int
	LateRoundsFraction float64
	// FirstRoundTime and LaterRoundsTime split the superstep wall time
	// by phase: the first dependency-free round vs. the conflict-
	// resolution rounds after it (zero for sequential algorithms).
	// LateRoundsFraction is LaterRoundsTime over their sum; the raw
	// durations feed the serving tier's phase-latency histograms.
	FirstRoundTime  time.Duration
	LaterRoundsTime time.Duration
	// Constraint instrumentation (zero without WithConstraint):
	// ConstraintVetoes counts switches rejected by the constraint layer
	// (local vetoes, connectivity rejections, and speculative switches
	// rolled back), EscapeAttempts and EscapeMoves the compound
	// k-switch escape proposals and acceptances. Accepted is always net
	// of rollbacks.
	ConstraintVetoes int64
	EscapeAttempts   int64
	EscapeMoves      int64
	// Exact-tier instrumentation (zero for the MCMC chains): Restarts
	// counts configurations rejected for a defect and regenerated from
	// scratch, split into LoopDefects and MultiDefects by first defect
	// found. For Exact, Attempted counts configurations generated and
	// Accepted the draws emitted, so Accepted/Attempted is the
	// empirical acceptance rate exp(-λ-λ²) the regime gate bounds.
	Restarts     int64
	LoopDefects  int64
	MultiDefects int64
	Duration     time.Duration
}

// Randomize runs the selected switching Markov chain on g in place and
// returns run statistics. The degree sequence and simplicity of g are
// preserved; after enough supersteps (default 20) the result is an
// approximately uniform sample from the set of simple graphs with g's
// degrees.
//
// Randomize is the one-shot form of NewSampler(g, ...) followed by one
// Step call: every invocation rebuilds the engine's edge-set state from
// scratch. Callers drawing many samples from the same graph should hold
// a Sampler (see Ensemble) to amortize that setup.
func Randomize(g *Graph, opt Options) (Stats, error) {
	start := time.Now()
	s, err := NewSampler(g, opt.samplerOptions()...)
	if err != nil {
		return Stats{}, err
	}
	st, err := s.Step(opt.supersteps())
	// One-shot semantics: release the worker gang immediately (no
	// sampler survives to Close it) and report a duration that includes
	// the engine construction the caller paid for, as it always did.
	s.Close()
	st.Duration = time.Since(start)
	return st, err
}

// SampleFromDegrees materializes the degree sequence with Havel-Hakimi
// and randomizes it: the one-call path to an approximately uniform
// sample of a simple graph with the prescribed degrees. For many
// samples of one sequence, build the graph once with FromDegrees and
// draw through a Sampler instead.
func SampleFromDegrees(degrees []int, opt Options) (*Graph, Stats, error) {
	g, err := FromDegrees(degrees)
	if err != nil {
		return nil, Stats{}, err
	}
	stats, err := Randomize(g, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return g, stats, nil
}

// Chain selects the Markov chain for AnalyzeMixing.
type Chain int

const (
	// ChainES is standard ES-MC.
	ChainES Chain = iota
	// ChainGlobalES is the paper's G-ES-MC.
	ChainGlobalES
)

// MixingResult is the output of AnalyzeMixing: for each thinning value
// (in supersteps), the fraction of tracked edges whose thinned
// time series still looks first-order-Markov rather than independent
// (§6.1's autocorrelation/BIC diagnostic).
type MixingResult struct {
	Thinnings      []int
	NonIndependent []float64
}

// FirstThinningBelow returns the smallest thinning whose fraction of
// non-independent edges is below tau, or 0 if none. The returned value
// is the natural input to WithThinning when drawing ensembles from
// graphs of the same scale.
func (m MixingResult) FirstThinningBelow(tau float64) int {
	for i, k := range m.Thinnings {
		if m.NonIndependent[i] < tau {
			return k
		}
	}
	return 0
}

// AnalyzeMixing runs the chain for the given number of supersteps on a
// clone of g (the graph is not modified) and reports the autocorrelation
// diagnostic over the edges of the initial graph.
func AnalyzeMixing(g *Graph, chain Chain, supersteps int, seed uint64) MixingResult {
	ac := autocorr.ChainES
	if chain == ChainGlobalES {
		ac = autocorr.ChainGlobalES
	}
	maxThin := supersteps / 8
	if maxThin < 2 {
		maxThin = 2
	}
	res := autocorr.Analyze(g.raw(), ac, supersteps, autocorr.DefaultThinnings(maxThin), core.DefaultLoopProb, seed)
	return MixingResult{Thinnings: res.Thinnings, NonIndependent: res.NonIndependent}
}
