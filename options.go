package gesmc

import (
	"fmt"
	"math"
)

// samplerConfig is the resolved configuration of a Sampler.
type samplerConfig struct {
	algorithm        Algorithm
	workers          int
	seed             uint64
	swapsPerEdge     float64
	swapsSet         bool // WithSwapsPerEdge called explicitly (default is 10 either way)
	burnIn           int // supersteps before the first sample; 0 derives from swapsPerEdge
	thinning         int // supersteps between samples; 0 derives from burn-in
	loopProb         float64
	chunkBytes       int
	prefetch         bool
	sampleViaBuckets bool
	progress         func(Progress)
	constraints      []Constraint
}

func defaultSamplerConfig() samplerConfig {
	return samplerConfig{
		algorithm:    ParGlobalES,
		workers:      1,
		swapsPerEdge: 10,
	}
}

// burnInSteps resolves the burn-in in supersteps: an explicit WithBurnIn
// wins, otherwise the swaps-per-edge target is converted exactly like
// the legacy Options (ceil(2*swapsPerEdge) supersteps, since one
// superstep attempts ⌊m/2⌋ switches).
func (c *samplerConfig) burnInSteps() int {
	if c.burnIn > 0 {
		return c.burnIn
	}
	return int(math.Ceil(2 * c.swapsPerEdge))
}

// thinningSteps resolves the thinning in supersteps. Without an explicit
// WithThinning it falls back to the burn-in, making every ensemble
// sample as decorrelated from its predecessor as the first sample is
// from the input graph — conservative but never wrong. AnalyzeMixing
// measures how much smaller the thinning can safely be.
func (c *samplerConfig) thinningSteps() int {
	if c.thinning > 0 {
		return c.thinning
	}
	return c.burnInSteps()
}

// Option configures a Sampler. Options validate eagerly: NewSampler
// returns the first validation error instead of silently correcting the
// value, and every error wraps one of this package's typed sentinels.
type Option func(*samplerConfig) error

// WithAlgorithm selects the switching (or trading) Markov chain.
// Default: ParGlobalES, the paper's headline algorithm.
func WithAlgorithm(a Algorithm) Option {
	return func(c *samplerConfig) error {
		if !a.valid() {
			return fmt.Errorf("%w: Algorithm(%d)", ErrUnknownAlgorithm, int(a))
		}
		c.algorithm = a
		return nil
	}
}

// WithWorkers sets the parallelism degree P of the parallel algorithms
// — NaiveParES, ParES, ParGlobalES (undirected, directed, and
// bipartite targets), and the Curveball/GlobalCurveball trade chains —
// and is ignored by the sequential ones. The trade chains produce
// bit-identical results for every worker count. Default: 1.
func WithWorkers(p int) Option {
	return func(c *samplerConfig) error {
		if p < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidWorkers, p)
		}
		c.workers = p
		return nil
	}
}

// WithSeed fixes the random seed. Runs with equal (target, options) are
// deterministic. Default: 0.
func WithSeed(seed uint64) Option {
	return func(c *samplerConfig) error {
		c.seed = seed
		return nil
	}
}

// WithSwapsPerEdge sets the burn-in length indirectly: enough supersteps
// that the expected number of switch attempts is s per edge. The paper
// (and the empirical literature it cites) recommends 10-30. Default: 10.
func WithSwapsPerEdge(s float64) Option {
	return func(c *samplerConfig) error {
		if !(s > 0) || math.IsInf(s, 0) {
			return fmt.Errorf("%w: got %v", ErrInvalidSwapsPerEdge, s)
		}
		c.swapsPerEdge = s
		c.swapsSet = true
		return nil
	}
}

// WithBurnIn sets the burn-in before the first sample to an explicit
// superstep count, overriding WithSwapsPerEdge.
func WithBurnIn(supersteps int) Option {
	return func(c *samplerConfig) error {
		if supersteps < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidBurnIn, supersteps)
		}
		c.burnIn = supersteps
		return nil
	}
}

// WithThinning sets the supersteps between consecutive ensemble samples.
// Default: the burn-in length. AnalyzeMixing's FirstThinningBelow gives
// an empirically safe (usually much smaller) value for a given graph.
func WithThinning(supersteps int) Option {
	return func(c *samplerConfig) error {
		if supersteps < 1 {
			return fmt.Errorf("%w: got %d", ErrInvalidThinning, supersteps)
		}
		c.thinning = supersteps
		return nil
	}
}

// WithLoopProb sets P_L of G-ES-MC (Definition 3). Zero selects the
// package default (1e-6); values outside [0, 1] are rejected.
func WithLoopProb(p float64) Option {
	return func(c *samplerConfig) error {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("%w: got %v", ErrInvalidLoopProb, p)
		}
		c.loopProb = p
		return nil
	}
}

// WithPrefetch enables the hash-bucket pre-touch pipeline (§5.4): the
// buckets and dependency-table chains an upcoming operation will probe
// are loaded a few items ahead, hiding the cache misses of the hot
// probing loops. It applies to every chain — the sequential software
// pipeline of SeqES, and the parallel kernel's batched phase-1 stores,
// decide-cursor pre-touch, and phase-3 applies used by ParES,
// ParGlobalES (undirected, directed, bipartite), and the
// Curveball/GlobalCurveball trade chains. Results are bit-identical
// with the pipeline on or off. Default: off.
func WithPrefetch(on bool) Option {
	return func(c *samplerConfig) error {
		c.prefetch = on
		return nil
	}
}

// WithChunkBytes overrides the dynamic-chunk grain of the parallel
// kernels: each work-stealing claim made by a worker covers roughly
// this many bytes of edge data. The default derives the grain from the
// detected cache topology (a quarter of the per-core L2, capped by the
// workers' LLC share) and is right for almost every machine; the knob
// exists for experiments and unusual hardware. Results are
// bit-identical for any grain. Zero keeps the default.
func WithChunkBytes(bytes int) Option {
	return func(c *samplerConfig) error {
		if bytes < 0 {
			return fmt.Errorf("%w: got %d", ErrInvalidChunkBytes, bytes)
		}
		c.chunkBytes = bytes
		return nil
	}
}

// WithSampleViaBuckets makes SeqES sample edges by probing random hash
// buckets instead of the auxiliary edge array (§5.3).
func WithSampleViaBuckets(on bool) Option {
	return func(c *samplerConfig) error {
		c.sampleViaBuckets = on
		return nil
	}
}

// WithConstraint restricts the sampled state space to the realizations
// satisfying every given constraint — Connected(), ForbiddenEdges(...),
// ProtectedEdges(...), NodeClasses(...). Repeated WithConstraint calls
// accumulate. Validation that needs the target (edge bounds, forbidden
// edges absent, protected edges present, connected start state) runs
// in NewSampler and returns ErrInvalidConstraint,
// ErrUnsupportedConstraint, or ErrConstraintViolated.
//
// Local constraints keep results bit-identical across worker counts;
// with Connected() active the chain is deterministic per (seed,
// workers) and every emitted sample is connected. See the Constraint
// type for the evaluation model and supported algorithms.
func WithConstraint(cs ...Constraint) Option {
	return func(c *samplerConfig) error {
		c.constraints = append(c.constraints, cs...)
		return nil
	}
}

// WithProgress registers a callback invoked after every superstep the
// sampler advances. The callback runs on the sampler's goroutine; keep
// it cheap.
func WithProgress(fn func(Progress)) Option {
	return func(c *samplerConfig) error {
		c.progress = fn
		return nil
	}
}
