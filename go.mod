module gesmc

go 1.24
