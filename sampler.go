package gesmc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gesmc/internal/constraint"
	"gesmc/internal/core"
	"gesmc/internal/curveball"
	"gesmc/internal/digraph"
	"gesmc/internal/exact"
	"gesmc/internal/graph"
	"gesmc/internal/switching"
)

// Target is a graph class the Sampler can randomize: *Graph (simple
// undirected graphs), and *DiGraph (simple directed graphs, which also
// covers bipartite graphs via FromBipartiteDegrees). The interface is
// sealed; the two implementations in this package are the supported
// target classes.
type Target interface {
	newSamplerEngine(cfg *samplerConfig) (samplerEngine, error)
}

// samplerEngine is the compiled, resumable chain state behind a Sampler.
type samplerEngine interface {
	// steps advances k supersteps, honoring ctx at superstep boundaries.
	steps(ctx context.Context, k int) (engineStats, error)
	// snapshot clones the target's current state.
	snapshot() (*Graph, *DiGraph)
	// close releases the chain's persistent worker gang, if any.
	close()
}

// engineStats carries raw counters between the internal engines and the
// public Stats, so increments merge exactly.
type engineStats struct {
	supersteps   int
	attempted    int64
	legal        int64
	internal     int
	totalRounds  int64
	maxRounds    int
	firstRound   time.Duration
	laterRounds  time.Duration
	vetoed       int64
	escAttempts  int64
	escMoves     int64
	restarts     int64
	loopDefects  int64
	multiDefects int64
	duration     time.Duration
}

func (a *engineStats) add(b engineStats) {
	a.supersteps += b.supersteps
	a.attempted += b.attempted
	a.legal += b.legal
	a.internal += b.internal
	a.totalRounds += b.totalRounds
	if b.maxRounds > a.maxRounds {
		a.maxRounds = b.maxRounds
	}
	a.firstRound += b.firstRound
	a.laterRounds += b.laterRounds
	a.vetoed += b.vetoed
	a.escAttempts += b.escAttempts
	a.escMoves += b.escMoves
	a.restarts += b.restarts
	a.loopDefects += b.loopDefects
	a.multiDefects += b.multiDefects
	a.duration += b.duration
}

func (a engineStats) toStats(algorithm string) Stats {
	st := Stats{
		Algorithm:        algorithm,
		Supersteps:       a.supersteps,
		Attempted:        a.attempted,
		Accepted:         a.legal,
		MaxRounds:        a.maxRounds,
		ConstraintVetoes: a.vetoed,
		EscapeAttempts:   a.escAttempts,
		EscapeMoves:      a.escMoves,
		Restarts:         a.restarts,
		LoopDefects:      a.loopDefects,
		MultiDefects:     a.multiDefects,
		Duration:         a.duration,
	}
	if a.internal > 0 {
		st.AvgRounds = float64(a.totalRounds) / float64(a.internal)
	}
	if total := a.firstRound + a.laterRounds; total > 0 {
		st.LateRoundsFraction = float64(a.laterRounds) / float64(total)
	}
	st.FirstRoundTime = a.firstRound
	st.LaterRoundsTime = a.laterRounds
	return st
}

// Progress reports sampler advancement to a WithProgress callback.
type Progress struct {
	// Supersteps advanced over the sampler's lifetime.
	Supersteps int
	// Samples emitted so far (via Sample, Ensemble, or Collect).
	Samples int
}

// Sample is one draw of an ensemble: a deep copy of the target after
// burn-in/thinning, with the statistics of the supersteps that produced
// it. Exactly one of Graph and DiGraph is non-nil, matching the
// sampler's target class. A Sample with Err != nil reports early
// termination (context cancellation) and carries no graph.
type Sample struct {
	// Index is the position of this draw in the ensemble, from 0.
	Index int
	// Graph is the drawn undirected graph (nil for directed targets).
	Graph *Graph
	// DiGraph is the drawn directed graph (nil for undirected targets).
	DiGraph *DiGraph
	// Stats covers the supersteps advanced for this draw.
	Stats Stats
	// Err is the terminal error, if the ensemble stopped early.
	Err error
}

// Sampler is a reusable, stateful sampling engine: NewSampler compiles
// the target graph once into the selected algorithm's working state
// (hash-based edge set, dependency table, adjacency lists, RNG streams),
// after which Step, Sample, and Ensemble advance the same Markov chain
// without ever rebuilding that state. This amortizes the setup cost the
// paper's data structures (§5) are designed around: drawing k samples
// through one Sampler costs one compilation plus burn-in plus (k-1)
// thinning intervals, against k full burn-ins for k one-shot Randomize
// calls.
//
// The Sampler mutates the target in place; Ensemble and Collect hand
// out deep copies. A Sampler is not safe for concurrent use.
type Sampler struct {
	target  Target
	eng     samplerEngine
	algName string
	burnIn  int
	thin    int

	progress func(Progress)
	steps    int
	samples  int
	burned   bool
	closed   bool
	total    engineStats
}

// NewSampler compiles the target into a reusable sampling engine.
// Options validate eagerly; the first invalid option is returned as a
// typed error (see errors.go).
func NewSampler(t Target, opts ...Option) (*Sampler, error) {
	if t == nil {
		return nil, ErrNilTarget
	}
	cfg := defaultSamplerConfig()
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	eng, err := t.newSamplerEngine(&cfg)
	if err != nil {
		return nil, err
	}
	burnIn, thin := cfg.burnInSteps(), cfg.thinningSteps()
	if cfg.algorithm == Exact {
		// Exact draws are i.i.d.: one superstep is one fresh uniform
		// draw, so burn-in and thinning collapse to a single superstep
		// (explicit schedule options were already rejected by the
		// engine compile with ErrExactSchedule).
		burnIn, thin = 1, 1
	}
	return &Sampler{
		target:   t,
		eng:      eng,
		algName:  cfg.algorithm.String(),
		burnIn:   burnIn,
		thin:     thin,
		progress: cfg.progress,
	}, nil
}

// Close releases the sampler's persistent worker gang (the parallel
// algorithms park P-1 long-lived goroutines between supersteps). The
// target keeps its current state. Close is idempotent; after the first
// call, Step, Sample, Ensemble, and Collect return ErrClosed instead of
// touching the released gang. Closing is optional — a leaked sampler's
// gang is reclaimed by a finalizer once the sampler is collected — but
// deterministic release is good hygiene for callers that compile many
// samplers (engine pools close evicted samplers through this path).
func (s *Sampler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.close()
}

// Closed reports whether Close has been called.
func (s *Sampler) Closed() bool { return s.closed }

// Algorithm returns the name of the chain the sampler runs.
func (s *Sampler) Algorithm() string { return s.algName }

// BurnIn returns the supersteps the first Sample call advances.
func (s *Sampler) BurnIn() int { return s.burnIn }

// Thinning returns the supersteps between consecutive samples.
func (s *Sampler) Thinning() int { return s.thin }

// Supersteps returns the total supersteps advanced over the sampler's
// lifetime.
func (s *Sampler) Supersteps() int { return s.steps }

// Samples returns the number of samples drawn so far.
func (s *Sampler) Samples() int { return s.samples }

// Stats returns the statistics accumulated over the sampler's lifetime.
func (s *Sampler) Stats() Stats { return s.total.toStats(s.algName) }

// advance moves the chain k supersteps, merging counters exactly and
// firing the progress callback per superstep when registered.
func (s *Sampler) advance(ctx context.Context, k int) (Stats, error) {
	if s.closed {
		return Stats{}, ErrClosed
	}
	if k < 0 {
		return Stats{}, fmt.Errorf("%w: got %d", ErrInvalidSupersteps, k)
	}
	var agg engineStats
	if s.progress == nil {
		es, err := s.eng.steps(ctx, k)
		s.steps += es.supersteps
		s.total.add(es)
		return es.toStats(s.algName), err
	}
	for i := 0; i < k; i++ {
		es, err := s.eng.steps(ctx, 1)
		s.steps += es.supersteps
		s.total.add(es)
		agg.add(es)
		if err != nil {
			return agg.toStats(s.algName), err
		}
		s.progress(Progress{Supersteps: s.steps, Samples: s.samples})
	}
	return agg.toStats(s.algName), nil
}

// Step advances the chain by k supersteps (one superstep = ⌊m/2⌋ switch
// attempts for ES-MC chains, one global switch/trade for the global
// chains) and returns the statistics of exactly this increment. The
// target reflects the new state in place.
func (s *Sampler) Step(k int) (Stats, error) {
	return s.StepContext(context.Background(), k)
}

// StepContext is Step with cancellation, honored at superstep
// boundaries: on ctx expiry the target is left in the valid state after
// the last completed superstep and ctx.Err() is returned alongside
// partial statistics.
func (s *Sampler) StepContext(ctx context.Context, k int) (Stats, error) {
	return s.advance(ctx, k)
}

// Sample advances the chain to the next independent sample: the burn-in
// interval on the first call, the thinning interval afterwards. The
// target then holds the sample; read it in place, or Clone it to keep
// it past the next advance.
func (s *Sampler) Sample() (Stats, error) {
	return s.SampleContext(context.Background())
}

// SampleContext is Sample with cancellation.
func (s *Sampler) SampleContext(ctx context.Context) (Stats, error) {
	k := s.thin
	if !s.burned {
		k = s.burnIn
	}
	st, err := s.advance(ctx, k)
	if err != nil {
		return st, err
	}
	s.burned = true
	s.samples++
	return st, nil
}

// Burned reports whether the burn-in interval has been paid: the next
// Sample call advances the thinning interval rather than the burn-in.
// Pooling layers use it together with Supersteps to decide whether a
// cached chain can still fast-forward to a resume point.
func (s *Sampler) Burned() bool { return s.burned }

// FastForwardTo advances the chain so that the next Sample call emits
// the canonical ensemble draw with the given index — the chain state
// after burnIn + index·thinning supersteps from the compiled target,
// exactly the state an uninterrupted Ensemble run reaches for its
// index-th sample (superstep advancement is split-invariant, see
// TestEngineSplitStepsMatchOneShot). This is the resume primitive of
// the serving layer: a stream broken after index samples is continued
// bit-identically by fast-forwarding a fresh sampler with the same
// (target, options, seed) and drawing the remaining samples.
//
// The chain only runs forward: if it has already advanced past the
// required position (a pooled sampler that served a longer stream),
// FastForwardTo returns ErrResumeBehind and the chain is unchanged.
// On context cancellation the chain stops at a superstep boundary and
// remains valid. The returned Stats cover the supersteps advanced by
// the fast-forward itself.
func (s *Sampler) FastForwardTo(ctx context.Context, index int) (Stats, error) {
	if s.closed {
		return Stats{}, ErrClosed
	}
	if index < 0 {
		return Stats{}, fmt.Errorf("%w: got %d", ErrInvalidCount, index)
	}
	// Position the chain so the next advance (burn-in if unburned,
	// thinning if burned) lands exactly on burnIn + index·thinning.
	pos := index * s.thin
	if s.burned {
		pos += s.burnIn - s.thin
	}
	if pos < s.steps {
		return Stats{}, fmt.Errorf("%w: chain at superstep %d, resume point needs %d",
			ErrResumeBehind, s.steps, pos)
	}
	return s.advance(ctx, pos-s.steps)
}

// Ensemble streams count thinned samples as deep copies over a channel,
// the null-model workload: one engine compilation, one burn-in, then a
// sample every thinning interval. The channel closes after the last
// sample; on cancellation it closes early, delivering a final Sample
// carrying the context error when the consumer is keeping pace (best
// effort — use Collect when the terminal error must be observed
// synchronously). Callers must either drain the channel or cancel ctx;
// abandoning it without cancelling leaks the producing goroutine.
func (s *Sampler) Ensemble(ctx context.Context, count int) <-chan Sample {
	ch := make(chan Sample, 1)
	go func() {
		defer close(ch)
		if count < 0 {
			ch <- Sample{Err: fmt.Errorf("%w: got %d", ErrInvalidCount, count)}
			return
		}
		for i := 0; i < count; i++ {
			st, err := s.SampleContext(ctx)
			if err != nil {
				// Deliver the termination marker if anyone still listens.
				select {
				case ch <- Sample{Index: i, Stats: st, Err: err}:
				default:
				}
				return
			}
			g, dg := s.eng.snapshot()
			smp := Sample{Index: i, Graph: g, DiGraph: dg, Stats: st}
			select {
			case ch <- smp:
			case <-ctx.Done():
				select {
				case ch <- Sample{Index: i, Err: ctx.Err()}:
				default:
				}
				return
			}
		}
	}()
	return ch
}

// Collect draws count thinned samples synchronously. On cancellation it
// returns the samples drawn so far alongside the context error.
func (s *Sampler) Collect(ctx context.Context, count int) ([]Sample, error) {
	if count < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidCount, count)
	}
	out := make([]Sample, 0, count)
	for i := 0; i < count; i++ {
		st, err := s.SampleContext(ctx)
		if err != nil {
			return out, err
		}
		g, dg := s.eng.snapshot()
		out = append(out, Sample{Index: i, Graph: g, DiGraph: dg, Stats: st})
	}
	return out, nil
}

// ---- engine adapters ----

// graphEngine adapts core.Engine (the seven switching implementations)
// to the sampler.
type graphEngine struct {
	g   *Graph
	eng *core.Engine
}

func (e *graphEngine) steps(ctx context.Context, k int) (engineStats, error) {
	rs, err := e.eng.Steps(ctx, k)
	e.g.invalidate()
	return engineStats{
		supersteps:  rs.Supersteps,
		attempted:   rs.Attempted,
		legal:       rs.Legal,
		internal:    rs.InternalSupersteps,
		totalRounds: rs.TotalRounds,
		maxRounds:   rs.MaxRounds,
		firstRound:  rs.FirstRoundTime,
		laterRounds: rs.LaterRoundsTime,
		vetoed:      rs.Vetoed,
		escAttempts: rs.EscapeAttempts,
		escMoves:    rs.EscapeMoves,
		duration:    rs.Duration,
	}, err
}

func (e *graphEngine) snapshot() (*Graph, *DiGraph) { return e.g.Clone(), nil }

func (e *graphEngine) close() { e.eng.Close() }

// curveballEngine adapts the parallel trade kernel to the sampler. One
// superstep is one global trade (GlobalCurveball) or ⌊n/2⌋ uniformly
// random trades (Curveball), mirroring the switch-chains' superstep
// normalization; both execute in superstep batches through the shared
// round driver, so WithWorkers applies and the rounds instrumentation
// is populated exactly like the parallel switching chains'. Trades have
// no rejection, so Accepted == Attempted == the number of trades
// performed, and results are bit-identical for every worker count.
type curveballEngine struct {
	g      *Graph
	eng    *curveball.Engine
	global bool
	prev   switching.Stats
	prevAt int64
}

func (e *curveballEngine) steps(ctx context.Context, k int) (engineStats, error) {
	start := time.Now()
	var es engineStats
	var err error
	for i := 0; i < k; i++ {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		if e.global {
			e.eng.GlobalStep()
		} else {
			e.eng.LocalStep()
		}
		es.supersteps++
	}
	d := e.eng.Stats().Sub(e.prev)
	e.prev = e.eng.Stats()
	es.attempted = e.eng.Attempted - e.prevAt
	e.prevAt = e.eng.Attempted
	es.legal = d.Legal
	es.internal = d.InternalSupersteps
	es.totalRounds = d.TotalRounds
	es.maxRounds = d.MaxRounds
	es.firstRound = d.FirstRoundTime
	es.laterRounds = d.LaterRoundsTime
	e.eng.WriteEdges(e.g.raw().Edges())
	e.g.invalidate()
	es.duration = time.Since(start)
	return es, err
}

func (e *curveballEngine) snapshot() (*Graph, *DiGraph) { return e.g.Clone(), nil }

func (e *curveballEngine) close() { e.eng.Close() }

// exactEngine adapts the exact rejection sampler (internal/exact) to
// the sampler. One superstep is one fresh exactly uniform draw,
// written into the target in place like the chain engines write their
// switched state; the engine holds no chain state beyond the RNG
// stream position, which is what makes pooled exact engines freely
// resumable (DESIGN.md §14). There is no worker gang to release:
// close is a no-op and WithWorkers is accepted but ignored.
type exactEngine struct {
	g   *Graph
	eng *exact.Sampler
}

func (e *exactEngine) steps(ctx context.Context, k int) (engineStats, error) {
	start := time.Now()
	var es engineStats
	before := e.eng.Stats()
	var err error
	for i := 0; i < k; i++ {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		var rg *graph.Graph
		rg, err = e.eng.DrawGraph()
		if err != nil {
			break
		}
		e.g.g = rg
		e.g.invalidate()
		es.supersteps++
	}
	d := e.eng.Stats()
	es.attempted = d.Attempts - before.Attempts
	es.legal = d.Samples - before.Samples
	es.restarts = d.Restarts - before.Restarts
	es.loopDefects = d.LoopDefects - before.LoopDefects
	es.multiDefects = d.MultiDefects - before.MultiDefects
	es.duration = time.Since(start)
	return es, err
}

func (e *exactEngine) snapshot() (*Graph, *DiGraph) { return e.g.Clone(), nil }

func (e *exactEngine) close() {}

// newExactEngine compiles an undirected target for the Exact
// algorithm, mapping the internal typed errors to the public
// sentinels and rejecting the options that have no meaning for i.i.d.
// draws.
func newExactEngine(g *Graph, cfg *samplerConfig) (samplerEngine, error) {
	if len(cfg.constraints) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedConstraint, exactName)
	}
	if cfg.burnIn > 0 || cfg.thinning > 0 || cfg.swapsSet {
		return nil, fmt.Errorf("%w (WithBurnIn/WithThinning/WithSwapsPerEdge with %s)",
			ErrExactSchedule, exactName)
	}
	eng, err := exact.New(g.g.Degrees(), cfg.seed)
	if err != nil {
		var ue *exact.UnsupportedError
		if errors.As(err, &ue) {
			return nil, fmt.Errorf("%w: λ+λ² = %.2f", ErrExactUnsupported, ue.Score)
		}
		// The degree sequence of an existing graph is graphical by
		// construction; anything else is an internal invariant break.
		return nil, err
	}
	return &exactEngine{g: g, eng: eng}, nil
}

// digraphEngine adapts digraph.Engine (directed and bipartite targets)
// to the sampler.
type digraphEngine struct {
	g   *DiGraph
	eng *digraph.Engine
}

func (e *digraphEngine) steps(ctx context.Context, k int) (engineStats, error) {
	rs, err := e.eng.Steps(ctx, k)
	return engineStats{
		supersteps:  rs.Supersteps,
		attempted:   rs.Attempted,
		legal:       rs.Legal,
		internal:    rs.InternalSupersteps,
		totalRounds: rs.TotalRounds,
		maxRounds:   rs.MaxRounds,
		firstRound:  rs.FirstRoundTime,
		laterRounds: rs.LaterRoundsTime,
		vetoed:      rs.Vetoed,
		escAttempts: rs.EscapeAttempts,
		escMoves:    rs.EscapeMoves,
		duration:    rs.Duration,
	}, err
}

func (e *digraphEngine) snapshot() (*Graph, *DiGraph) { return nil, e.g.Clone() }

func (e *digraphEngine) close() { e.eng.Close() }

// newSamplerEngine compiles an undirected target: the seven switching
// implementations plus the two Curveball chains.
func (g *Graph) newSamplerEngine(cfg *samplerConfig) (samplerEngine, error) {
	if g == nil || g.g == nil {
		return nil, ErrNilTarget
	}
	if cfg.algorithm == Exact {
		return newExactEngine(g, cfg)
	}
	if cfg.algorithm == Curveball || cfg.algorithm == GlobalCurveball {
		if len(cfg.constraints) > 0 {
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedConstraint, cfg.algorithm)
		}
		if g.g.M() < 2 {
			return nil, fmt.Errorf("%w: m=%d", ErrGraphTooSmall, g.g.M())
		}
		eng := curveball.NewEngine(g.g, cfg.workers, cfg.seed)
		eng.Prefetch = cfg.prefetch
		if cfg.chunkBytes > 0 {
			eng.SetChunkBytes(cfg.chunkBytes)
		}
		return &curveballEngine{
			g:      g,
			eng:    eng,
			global: cfg.algorithm == GlobalCurveball,
		}, nil
	}
	ca, ok := algNames[cfg.algorithm]
	if !ok {
		return nil, fmt.Errorf("%w: Algorithm(%d)", ErrUnknownAlgorithm, int(cfg.algorithm))
	}
	var spec *constraint.Spec
	if len(cfg.constraints) > 0 {
		switch cfg.algorithm {
		case SeqES, SeqGlobalES, ParES, ParGlobalES:
		default:
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedConstraint, cfg.algorithm)
		}
		if cfg.sampleViaBuckets {
			return nil, fmt.Errorf("%w: WithSampleViaBuckets", ErrUnsupportedConstraint)
		}
		edgeSet := make(map[uint64]struct{}, g.g.M())
		for _, e := range g.g.Edges() {
			edgeSet[uint64(e)] = struct{}{}
		}
		has := func(e uint64) bool { _, ok := edgeSet[e]; return ok }
		var err error
		spec, err = compileConstraints(cfg.constraints, g.g.N(), false, has, g.IsConnected)
		if err != nil {
			return nil, err
		}
	}
	eng, err := core.NewEngine(g.g, ca, core.Config{
		Workers:          cfg.workers,
		Seed:             cfg.seed,
		LoopProb:         cfg.loopProb,
		Prefetch:         cfg.prefetch,
		SampleViaBuckets: cfg.sampleViaBuckets,
		ChunkBytes:       cfg.chunkBytes,
		Constraint:       spec,
	})
	if err != nil {
		if errors.Is(err, core.ErrTooSmall) {
			return nil, fmt.Errorf("%w: m=%d", ErrGraphTooSmall, g.g.M())
		}
		return nil, err
	}
	return &graphEngine{g: g, eng: eng}, nil
}

// dirAlgs maps the public enum to the directed implementations.
// Directed switches need no direction bit, so ES-MC's data-structure
// ablations add nothing in the directed setting.
var dirAlgs = map[Algorithm]digraph.Algorithm{
	SeqES:       digraph.AlgSeqES,
	SeqGlobalES: digraph.AlgSeqGlobalES,
	ParGlobalES: digraph.AlgParGlobalES,
}

// newSamplerEngine compiles a directed (or bipartite) target.
func (g *DiGraph) newSamplerEngine(cfg *samplerConfig) (samplerEngine, error) {
	if g == nil || g.g == nil {
		return nil, ErrNilTarget
	}
	da, ok := dirAlgs[cfg.algorithm]
	if !ok {
		return nil, fmt.Errorf("%w: directed randomization supports SeqES, SeqGlobalES, ParGlobalES; got %s",
			ErrUnsupportedAlgorithm, cfg.algorithm)
	}
	var spec *constraint.Spec
	if len(cfg.constraints) > 0 {
		arcSet := make(map[uint64]struct{}, g.g.M())
		for _, a := range g.g.Arcs() {
			arcSet[uint64(a)] = struct{}{}
		}
		has := func(e uint64) bool { _, ok := arcSet[e]; return ok }
		var err error
		spec, err = compileConstraints(cfg.constraints, g.g.N(), true, has, g.IsConnected)
		if err != nil {
			return nil, err
		}
	}
	eng, err := digraph.NewEngine(g.g, da, digraph.Config{
		Workers:    cfg.workers,
		Seed:       cfg.seed,
		LoopProb:   cfg.loopProb,
		Prefetch:   cfg.prefetch,
		ChunkBytes: cfg.chunkBytes,
		Constraint: spec,
	})
	if err != nil {
		if errors.Is(err, digraph.ErrTooSmall) {
			return nil, fmt.Errorf("%w: m=%d", ErrGraphTooSmall, g.g.M())
		}
		return nil, err
	}
	return &digraphEngine{g: g, eng: eng}, nil
}
