// Benchmarks regenerating the paper's tables and figures as testing.B
// targets: run `go test -bench=. -benchmem` (see DESIGN.md §5 for the
// experiment index and cmd/experiments for the full drivers with the
// paper's output format).
package gesmc

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gesmc/internal/autocorr"
	"gesmc/internal/core"
	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// Shared benchmark workloads, generated once.
var (
	benchOnce sync.Once
	benchPld  *graph.Graph // power-law, the "social network" workload
	benchGnp  *graph.Graph // near-regular G(n,p)
	benchRoad *graph.Graph // grid, the road-network workload
)

func benchGraphs(b *testing.B) (*graph.Graph, *graph.Graph, *graph.Graph) {
	b.Helper()
	benchOnce.Do(func() {
		src := rng.NewMT19937(12345)
		var err error
		benchPld, err = gen.SynPldGraph(1<<14, 2.1, src)
		if err != nil {
			panic(err)
		}
		benchGnp = gen.GNP(1<<13, 16.0/float64(1<<13), src)
		benchRoad = gen.Grid2D(128, 128)
	})
	return benchPld, benchGnp, benchRoad
}

func runAlg(b *testing.B, g *graph.Graph, alg core.Algorithm, supersteps int, cfg core.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		if _, err := core.Run(c, alg, supersteps, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(g.M()) * 8 * int64(supersteps))
}

// BenchmarkTable4 regenerates Table 4 (Figure 4): all implementations,
// 20 supersteps, on the power-law workload; P=1 and P=4 variants for the
// parallel implementations.
func BenchmarkTable4(b *testing.B) {
	pld, _, _ := benchGraphs(b)
	for _, alg := range []core.Algorithm{
		core.AlgAdjListES, core.AlgAdjSortES, core.AlgSeqES, core.AlgSeqGlobalES,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			runAlg(b, pld, alg, 20, core.Config{Seed: 1, Prefetch: true})
		})
	}
	for _, alg := range []core.Algorithm{core.AlgNaiveParES, core.AlgParES, core.AlgParGlobalES} {
		for _, p := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/P%d", alg, p), func(b *testing.B) {
				runAlg(b, pld, alg, 20, core.Config{Seed: 1, Workers: p})
			})
		}
	}
}

// BenchmarkFig2Autocorr regenerates the Figure 2 measurement kernel: the
// autocorrelation analysis of ES-MC vs G-ES-MC on a SynPld graph.
func BenchmarkFig2Autocorr(b *testing.B) {
	src := rng.NewMT19937(2)
	g, err := gen.SynPldGraph(1<<7, 2.1, src)
	if err != nil {
		b.Fatal(err)
	}
	thinnings := autocorr.DefaultThinnings(8)
	for _, chain := range []autocorr.Chain{autocorr.ChainES, autocorr.ChainGlobalES} {
		b.Run(chain.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				autocorr.Analyze(g, chain, 48, thinnings, 1e-6, uint64(i))
			}
		})
	}
}

// BenchmarkFig5Prefetch regenerates the Figure 5 comparison: sequential
// and parallel G-ES-MC with the bucket pre-touch pipeline off and on.
func BenchmarkFig5Prefetch(b *testing.B) {
	pld, _, _ := benchGraphs(b)
	for _, prefetch := range []bool{false, true} {
		name := "off"
		if prefetch {
			name = "on"
		}
		b.Run("SeqES/prefetch="+name, func(b *testing.B) {
			runAlg(b, pld, core.AlgSeqES, 20, core.Config{Seed: 1, Prefetch: prefetch})
		})
		b.Run("SeqGlobalES/prefetch="+name, func(b *testing.B) {
			runAlg(b, pld, core.AlgSeqGlobalES, 20, core.Config{Seed: 1, Prefetch: prefetch})
		})
	}
}

// BenchmarkFig6Scaling regenerates Figure 6: ParGlobalES across worker
// counts (self speed-up is the inverse ratio of the reported times).
func BenchmarkFig6Scaling(b *testing.B) {
	pld, _, _ := benchGraphs(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			runAlg(b, pld, core.AlgParGlobalES, 20, core.Config{Seed: 1, Workers: p})
		})
	}
}

// BenchmarkFig7Density regenerates Figure 7: ParGlobalES on G(n,p) with
// a fixed edge budget and varying average degree.
func BenchmarkFig7Density(b *testing.B) {
	const m = 1 << 15
	for _, avg := range []float64{8, 64, 512} {
		n := int(2 * float64(m) / avg)
		src := rng.NewMT19937(uint64(n))
		g := gen.GNPWithEdges(n, m, src)
		b.Run(fmt.Sprintf("avgdeg=%.0f", avg), func(b *testing.B) {
			runAlg(b, g, core.AlgParGlobalES, 20, core.Config{Seed: 1, Workers: 4})
		})
	}
}

// BenchmarkFig8Gamma regenerates Figure 8: ParGlobalES runtime per edge
// across power-law exponents.
func BenchmarkFig8Gamma(b *testing.B) {
	for _, gamma := range []float64{2.01, 2.5, 3.0} {
		src := rng.NewMT19937(uint64(gamma * 1000))
		g, err := gen.SynPldGraph(1<<13, gamma, src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gamma=%.2f", gamma), func(b *testing.B) {
			runAlg(b, g, core.AlgParGlobalES, 20, core.Config{Seed: 1, Workers: 4})
		})
	}
}

// BenchmarkFig9Rounds regenerates Figure 9's kernel: global switches
// under the worst-case scheduler, whose round counts the paper bounds
// (road graph: near-regular, few rounds; power law: more rounds).
func BenchmarkFig9Rounds(b *testing.B) {
	pld, _, road := benchGraphs(b)
	for _, w := range []struct {
		name string
		g    *graph.Graph
	}{{"powerlaw", pld}, {"road", road}} {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			var rounds int64
			var steps int
			for i := 0; i < b.N; i++ {
				c := w.g.Clone()
				stats, err := core.Run(c, core.AlgParGlobalES, 5,
					core.Config{Seed: 1, Workers: 4, PessimisticRounds: true})
				if err != nil {
					b.Fatal(err)
				}
				rounds += stats.TotalRounds
				steps += stats.InternalSupersteps
			}
			b.ReportMetric(float64(rounds)/float64(steps), "rounds/superstep")
		})
	}
}

// BenchmarkAblationSampling compares §5.3's two edge-sampling options in
// SeqES: the auxiliary edge array vs direct random-bucket probing.
func BenchmarkAblationSampling(b *testing.B) {
	_, gnp, _ := benchGraphs(b)
	b.Run("array", func(b *testing.B) {
		runAlg(b, gnp, core.AlgSeqES, 10, core.Config{Seed: 1})
	})
	b.Run("buckets", func(b *testing.B) {
		runAlg(b, gnp, core.AlgSeqES, 10, core.Config{Seed: 1, SampleViaBuckets: true})
	})
}

// BenchmarkAblationPermutation compares the sequential Fisher-Yates
// shuffle with the parallel scatter shuffle that feeds ParGlobalES.
func BenchmarkAblationPermutation(b *testing.B) {
	const n = 1 << 18
	b.Run("sequential", func(b *testing.B) {
		src := rng.NewMT19937(1)
		for i := 0; i < b.N; i++ {
			rng.Perm(src, n)
		}
	})
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel/P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng.ParallelPerm(uint64(i), n, p)
			}
		})
	}
}

// BenchmarkEnsemble compares the two ways of drawing an ensemble of k
// degree-preserving samples from one graph: k independent one-shot
// Randomize calls (each paying engine construction plus a full burn-in)
// against one reused Sampler (one construction, one burn-in, then a
// sample every thinning interval). The "reused" variant matches the
// one-shot superstep count per sample to isolate the engine-state
// amortization; "reused-thinned" additionally uses a shorter thinning,
// the configuration AnalyzeMixing justifies and Ensemble is built for.
func BenchmarkEnsemble(b *testing.B) {
	const (
		samples = 8
		burnIn  = 20
		thin    = 4
	)
	base, err := GeneratePowerLaw(1<<12, 2.5, 3)
	if err != nil {
		b.Fatal(err)
	}
	bytesPerSample := int64(base.M()) * 8 * samples

	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < samples; s++ {
				c := base.Clone()
				if _, err := Randomize(c, Options{
					Algorithm: ParGlobalES, Workers: 2, Seed: uint64(s), Supersteps: burnIn,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.SetBytes(bytesPerSample)
	})
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := NewSampler(base.Clone(),
				WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(uint64(i)),
				WithBurnIn(burnIn), WithThinning(burnIn))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Collect(context.Background(), samples); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(bytesPerSample)
	})
	b.Run("reused-thinned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := NewSampler(base.Clone(),
				WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(uint64(i)),
				WithBurnIn(burnIn), WithThinning(thin))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Collect(context.Background(), samples); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(bytesPerSample)
	})
}

// BenchmarkPublicAPI measures the end-to-end public entry point.
func BenchmarkPublicAPI(b *testing.B) {
	g, err := GeneratePowerLaw(1<<12, 2.5, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		if _, err := Randomize(c, Options{Algorithm: ParGlobalES, Workers: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
