package gesmc

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteEdgeListRoundTripUndirected(t *testing.T) {
	g, err := NewGraph(5, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("round trip lost edge %v", e)
		}
	}
}

func TestWriteEdgeListRoundTripDirected(t *testing.T) {
	// Both orientations of (0,1) are distinct arcs and must survive.
	dg, err := NewDiGraph(4, [][2]uint32{{0, 1}, {1, 0}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, dg); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "% directed\n") {
		t.Fatalf("directed file lacks marker: %q", buf.String()[:20])
	}
	back, err := ReadArcList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != dg.N() || back.M() != dg.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", back.N(), back.M(), dg.N(), dg.M())
	}
	want := map[[2]uint32]bool{}
	for _, a := range dg.Arcs() {
		want[a] = true
	}
	for _, a := range back.Arcs() {
		if !want[a] {
			t.Fatalf("round trip invented arc %v", a)
		}
		delete(want, a)
	}
	if len(want) != 0 {
		t.Fatalf("round trip lost arcs: %v", want)
	}
}

func TestReadEdgeListRejectsDirectedMarker(t *testing.T) {
	dg, err := NewDiGraph(3, [][2]uint32{{0, 1}, {1, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgeList(&buf); err == nil {
		t.Fatal("undirected reader accepted a '% directed' arc list")
	}
	// An ordinary '%' comment is still tolerated.
	g, err := ReadEdgeList(strings.NewReader("% netrep export\n0 1\n1 2\n"))
	if err != nil || g.M() != 2 {
		t.Fatalf("comment-led edge list: g=%v err=%v", g, err)
	}
}

func TestReadArcListLoose(t *testing.T) {
	in := "# comment\n% directed\n0 1\n0 1\n2 2\n1 3\n"
	dg, err := ReadArcList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// duplicate (0,1) and the loop (2,2) are dropped; node 2 still
	// raises the inferred node count.
	if dg.N() != 4 || dg.M() != 2 {
		t.Fatalf("n=%d m=%d, want n=4 m=2", dg.N(), dg.M())
	}
}

func TestDirectedSamplerFromArcList(t *testing.T) {
	// The marker line keeps a directed file usable end to end: read,
	// randomize, write, re-read.
	dg, err := FromInOutDegrees([]int{2, 1, 1, 0}, []int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArcList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(back, WithAlgorithm(ParGlobalES), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(4); err != nil {
		t.Fatal(err)
	}
	if err := back.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}
